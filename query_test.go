package repro

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/graph"
)

// waitGoroutines polls until the goroutine count returns to (near) the
// baseline, failing the test if workers leaked.
func waitGoroutines(t *testing.T, before int, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("%s leaked goroutines: %d before, %d after", what, before, runtime.NumGoroutine())
}

// TestQueryCancellation: a cancelled context stops a long enumeration
// early, returns the context's error, leaks no goroutines, and leaves the
// handle able to answer subsequent queries with pristine statistics —
// for both parallel-capable algorithms and the subgraph queries.
func TestQueryCancellation(t *testing.T) {
	// K120: 280840 triangles, far more than one merge batch, so a cancel
	// fired early in the stream always precedes the natural end.
	g, err := Build(FromSpec("clique:n=120"), Options{MemoryWords: 1 << 10, BlockWords: 1 << 5})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	full, err := g.TrianglesFunc(nil, Query{Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, alg := range []Algorithm{CacheAware, Deterministic} {
		before := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		var partial uint64
		res, err := g.TrianglesFunc(ctx, Query{Algorithm: alg, Seed: 3, Workers: 4}, func(_, _, _ uint32) {
			partial++
			if partial == 100 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: cancelled query returned %v, want context.Canceled", alg, err)
		}
		if partial == 0 || partial >= full.Triangles {
			t.Errorf("%v: cancelled query emitted %d of %d triangles — not an early stop", alg, partial, full.Triangles)
		}
		if res.CanonIOs != full.CanonIOs {
			t.Errorf("%v: cancelled Result lost CanonIOs: %d want %d", alg, res.CanonIOs, full.CanonIOs)
		}
		if res.Matches != partial || res.Triangles != partial {
			t.Errorf("%v: cancelled Result reports %d/%d, want the partial count %d", alg, res.Matches, res.Triangles, partial)
		}
		if res.Stats.IOs() == 0 {
			t.Errorf("%v: cancelled Result carries no accumulated statistics", alg)
		}
		waitGoroutines(t, before, alg.String())
	}

	// Cancellation before the run starts is honored by every algorithm,
	// including the sequential ones.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	for _, alg := range Algorithms() {
		if _, err := g.TrianglesFunc(pre, Query{Algorithm: alg, Seed: 3}, nil); !errors.Is(err, context.Canceled) {
			t.Errorf("%v: pre-cancelled context returned %v, want context.Canceled", alg, err)
		}
	}

	// Subgraph queries cancel between color-tuple subproblems.
	cctx, ccancel := context.WithCancel(context.Background())
	var cliques uint64
	_, err = g.CliquesFunc(cctx, 4, Query{Seed: 3}, func([]uint32) {
		cliques++
		if cliques == 10 {
			ccancel()
		}
	})
	ccancel()
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Cliques: cancelled query returned %v, want context.Canceled", err)
	}

	// The handle recovered: a full query after all the cancellations
	// reproduces the original statistics exactly.
	again, err := g.TrianglesFunc(nil, Query{Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.Triangles != full.Triangles || again.Stats != full.Stats {
		t.Errorf("post-cancel query drifted: (t=%d %+v) want (t=%d %+v)",
			again.Triangles, again.Stats, full.Triangles, full.Stats)
	}
}

// TestTrianglesIterator: the iterator form yields exactly the callback
// form's stream, reports Result through Query.Result, and an early break
// cancels the run without leaking workers.
func TestTrianglesIterator(t *testing.T) {
	g, err := Build(FromSpec("planted:n=200,m=1500,k=14"), Options{MemoryWords: 1 << 10, BlockWords: 1 << 5})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	var want []graph.Triple
	wantRes, err := g.TrianglesFunc(nil, Query{Seed: 6}, func(a, b, c uint32) {
		want = append(want, graph.Triple{V1: a, V2: b, V3: c})
	})
	if err != nil {
		t.Fatal(err)
	}

	var res Result
	var got []graph.Triple
	for tr, err := range g.Triangles(context.Background(), Query{Seed: 6, Result: &res}) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, graph.Triple{V1: tr.A, V2: tr.B, V3: tr.C})
	}
	if len(got) != len(want) {
		t.Fatalf("iterator yielded %d triangles, callback emitted %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("iterator element %d = %v, callback emitted %v", i, got[i], want[i])
		}
	}
	if res.Triangles != wantRes.Triangles || res.Stats != wantRes.Stats {
		t.Errorf("Query.Result (t=%d %+v) differs from callback Result (t=%d %+v)",
			res.Triangles, res.Stats, wantRes.Triangles, wantRes.Stats)
	}

	// Early break: the producer is cancelled, no error is yielded, no
	// goroutines leak, and the handle still answers.
	before := runtime.NumGoroutine()
	n := 0
	for _, err := range g.Triangles(context.Background(), Query{Seed: 6, Workers: 4}) {
		if err != nil {
			t.Fatalf("unexpected iterator error: %v", err)
		}
		if n++; n == 5 {
			break
		}
	}
	if n != 5 {
		t.Fatalf("broke at %d elements, want 5", n)
	}
	waitGoroutines(t, before, "iterator break")
	again, err := g.TrianglesFunc(nil, Query{Seed: 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.Triangles != wantRes.Triangles || again.Stats != wantRes.Stats {
		t.Error("query after iterator break drifted")
	}
}

// TestCliquesAndMatch pins the public subgraph queries against the
// triangle engines and each other: Cliques(3) = Match(triangle) =
// Triangles count; Cliques(4) = Match(k4) count; clique emissions are
// ascending input ids.
func TestCliquesAndMatch(t *testing.T) {
	g, err := Build(FromSpec("planted:n=250,m=1800,k=16"), Options{MemoryWords: 1 << 10, BlockWords: 1 << 5})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	tri, err := g.TrianglesFunc(nil, Query{Seed: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := g.CliquesFunc(nil, 3, Query{Seed: 4}, func(vs []uint32) {
		if len(vs) != 3 || !(vs[0] < vs[1] && vs[1] < vs[2]) {
			t.Fatalf("clique emission %v is not strictly ascending", vs)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if c3.Matches != tri.Triangles {
		t.Errorf("Cliques(3) found %d, Triangles found %d", c3.Matches, tri.Triangles)
	}
	m3, err := g.MatchFunc(nil, PatternTriangle, Query{Seed: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m3.Matches != tri.Triangles {
		t.Errorf("Match(triangle) found %d, Triangles found %d", m3.Matches, tri.Triangles)
	}

	c4, err := g.CliquesFunc(nil, 4, Query{Seed: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m4, err := g.MatchFunc(nil, PatternK4, Query{Seed: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c4.Matches != m4.Matches {
		t.Errorf("Cliques(4) found %d, Match(k4) found %d", c4.Matches, m4.Matches)
	}
	if c4.Matches == 0 {
		t.Error("planted K16 should contain 4-cliques")
	}
	if c4.MaxSubproblem == 0 || c4.Subproblems == 0 {
		t.Errorf("decomposition stats missing: %+v", c4)
	}

	// Iterator forms agree with the callback counts and support break.
	n := uint64(0)
	for vs, err := range g.Cliques(context.Background(), 4, Query{Seed: 4}) {
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 4 {
			t.Fatalf("clique iterator yielded %d vertices", len(vs))
		}
		n++
	}
	if n != c4.Matches {
		t.Errorf("clique iterator yielded %d, callback found %d", n, c4.Matches)
	}
	n = 0
	for _, err := range g.Match(context.Background(), PatternDiamond, Query{Seed: 4}) {
		if err != nil {
			t.Fatal(err)
		}
		if n++; n == 3 {
			break
		}
	}

	// Error surface.
	if _, err := g.CliquesFunc(nil, 2, Query{}, nil); err == nil {
		t.Error("k=2 accepted")
	}
	if _, err := g.MatchFunc(nil, nil, Query{}, nil); err == nil {
		t.Error("nil pattern accepted")
	}
}

// TestPatternParseAndAccessors covers the public Pattern wrapper.
func TestPatternParseAndAccessors(t *testing.T) {
	for _, p := range Patterns() {
		got, err := ParsePattern(p.Name())
		if err != nil || got.Name() != p.Name() {
			t.Errorf("round trip failed for %v: %v", p, err)
		}
		if p.K() < 2 || p.K() > 8 || p.Automorphisms() < 1 || len(p.Edges()) == 0 {
			t.Errorf("degenerate pattern %v: k=%d |Aut|=%d edges=%d", p, p.K(), p.Automorphisms(), len(p.Edges()))
		}
	}
	if _, err := ParsePattern("nonagon"); err == nil {
		t.Error("bogus pattern accepted")
	}
	if _, err := NewPattern("disconnected", 4, [][2]int{{0, 1}, {2, 3}}); err == nil {
		t.Error("disconnected pattern accepted")
	}
	five := MustPattern("c5", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	if five.Automorphisms() != 10 {
		t.Errorf("|Aut(C5)| = %d, want 10", five.Automorphisms())
	}
}

// TestJoinWrapper covers the public join surface against the invariant
// that reconstruction of a 5NF-decomposed relation is lossless.
func TestJoinWrapper(t *testing.T) {
	rows := []JoinRow{
		{"ann", "acme", "vacuum"}, {"ann", "bolt", "kettle"},
		{"bob", "bolt", "vacuum"}, {"eve", "cord", "toaster"},
	}
	dec := DecomposeJoinRows(rows)
	if len(dec.SB) != 4 || len(dec.BT) != 4 || len(dec.ST) != 4 {
		t.Fatalf("decomposition sizes %d/%d/%d", len(dec.SB), len(dec.BT), len(dec.ST))
	}
	for _, alg := range []Algorithm{CacheAware, CacheOblivious, Deterministic, HuTaoChung} {
		got := map[JoinRow]bool{}
		st, err := dec.Join(JoinOptions{Algorithm: alg, Seed: 3}, func(r JoinRow) { got[r] = true })
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if st.Rows < uint64(len(rows)) {
			t.Errorf("%v: %d rows, want at least %d", alg, st.Rows, len(rows))
		}
		for _, r := range rows {
			if !got[r] {
				t.Errorf("%v: row %v lost in reconstruction", alg, r)
			}
		}
	}
	if _, err := dec.Join(JoinOptions{Algorithm: BlockNestedLoop}, nil); err == nil {
		t.Error("baseline algorithm accepted by join")
	}
}
