// Package repro is an I/O-efficient triangle enumeration library: a
// production-grade reproduction of
//
//	Rasmus Pagh and Francesco Silvestri,
//	"The Input/Output Complexity of Triangle Enumeration", PODS 2014.
//
// The library enumerates every triangle of an undirected graph using the
// paper's I/O-optimal algorithms — O(E^1.5/(sqrt(M)·B)) block transfers on
// a machine with M words of internal memory and blocks of B words —
// together with the pre-existing baselines it improves on. The external
// memory model is simulated with exact I/O accounting (see package
// internal/extmem), and can optionally be backed by a real file.
//
// Quick start:
//
//	edges := [][2]uint32{{0, 1}, {1, 2}, {0, 2}}
//	res, err := repro.Enumerate(edges, repro.Config{}, func(a, b, c uint32) {
//		fmt.Println(a, b, c)
//	})
//
// # Parallel execution
//
// The cache-aware algorithms decompose into independent subproblems — the
// c³ color triples of Section 2 and the per-vertex high-degree passes of
// Lemma 1 — and Enumerate runs them on a pool of Config.Workers workers
// (default: one per CPU). The O(sort(E)) substrate underneath them — edge
// canonicalization and the color-pair ordering — runs on the same pool
// via the parallel external-memory sorts of internal/emsort, whose output
// is byte-identical to the sequential sorts. Each worker executes
// subproblems on its own simulated machine, a private M-word cache over a
// shared read-only edge region, so the I/O accounting stays exact under
// concurrency: per-worker counts (Result.WorkerStats) sum to the same
// totals at every worker count, and the triangle stream handed to emit is
// byte-identical whether Workers is 1 or NumCPU. emit is always invoked
// from the calling goroutine, never concurrently.
//
// See examples/ for complete programs and EXPERIMENTS.md for the
// reproduction of every complexity claim in the paper.
package repro

import (
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/baseline"
	"repro/internal/emsort"
	"repro/internal/extmem"
	"repro/internal/graph"
	"repro/internal/trienum"
)

// Algorithm selects the enumeration algorithm.
type Algorithm int

const (
	// CacheAware is the randomized cache-aware algorithm of Section 2:
	// O(E^1.5/(sqrt(M)·B)) expected I/Os. The default.
	CacheAware Algorithm = iota
	// CacheOblivious is the randomized cache-oblivious algorithm of
	// Section 3: same bound, without using M or B.
	CacheOblivious
	// Deterministic is the derandomized cache-aware algorithm of Section
	// 4: same bound, worst case.
	Deterministic
	// HuTaoChung is the SIGMOD 2013 baseline: O(E²/(M·B)) I/Os.
	HuTaoChung
	// BlockNestedLoop is the classical join plan: O(E³/(M²·B)) I/Os.
	BlockNestedLoop
	// EdgeIterator is the Menegola-style baseline: O(E + E^1.5/B) I/Os.
	EdgeIterator
	// SortMerge is Dementiev's sort-based baseline: O(sort(E^1.5)) I/Os.
	SortMerge
)

var algorithmNames = map[Algorithm]string{
	CacheAware:      "cacheaware",
	CacheOblivious:  "oblivious",
	Deterministic:   "deterministic",
	HuTaoChung:      "hutaochung",
	BlockNestedLoop: "nestedloop",
	EdgeIterator:    "edgeiterator",
	SortMerge:       "sortmerge",
}

// String returns the canonical lower-case name.
func (a Algorithm) String() string {
	if s, ok := algorithmNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Algorithms lists every available algorithm.
func Algorithms() []Algorithm {
	return []Algorithm{CacheAware, CacheOblivious, Deterministic, HuTaoChung, BlockNestedLoop, EdgeIterator, SortMerge}
}

// ParseAlgorithm resolves a name produced by Algorithm.String.
func ParseAlgorithm(s string) (Algorithm, error) {
	for a, n := range algorithmNames {
		if n == strings.ToLower(s) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("repro: unknown algorithm %q (have %v)", s, Algorithms())
}

// Config describes the simulated external-memory machine and the
// algorithm to run on it.
type Config struct {
	// Algorithm defaults to CacheAware.
	Algorithm Algorithm
	// MemoryWords is the internal memory size M in 64-bit words
	// (default 1<<16). Must satisfy the tall-cache assumption
	// MemoryWords >= BlockWords².
	MemoryWords int
	// BlockWords is the block size B in words (default 1<<7, i.e. 1 KiB
	// blocks). Must be a power of two.
	BlockWords int
	// Seed drives the randomized algorithms; runs are deterministic in it.
	Seed uint64
	// Workers is the number of parallel workers solving independent
	// subproblems — and running the parallel external-memory sorts that
	// canonicalize the input and order the color-pair buckets — for the
	// CacheAware and Deterministic algorithms (0 = runtime.GOMAXPROCS(0),
	// i.e. one per CPU; the other algorithms are sequential and ignore
	// it). The triangle stream, the triangle count, and the aggregated
	// I/O statistics (including CanonIOs) are identical for every value
	// of Workers — only wall-clock time changes.
	Workers int
	// FamilySize overrides the small-bias family size used by the
	// Deterministic algorithm (0 = default).
	FamilySize int
	// DiskPath, when non-empty, backs the external memory with a real
	// file at that path instead of process memory.
	DiskPath string
}

func (c Config) withDefaults() Config {
	if c.MemoryWords == 0 {
		c.MemoryWords = 1 << 16
	}
	if c.BlockWords == 0 {
		c.BlockWords = 1 << 7
	}
	return c
}

// IOStats reports the block-transfer counts of a run.
type IOStats struct {
	// BlockReads and BlockWrites are the I/Os the paper's bounds count.
	BlockReads  uint64
	BlockWrites uint64
	// WordReads and WordWrites measure internal work (free in the model).
	WordReads  uint64
	WordWrites uint64
	// PeakLeaseWords is the high-water mark of internal memory used for
	// native algorithm state.
	PeakLeaseWords int
	// PeakDiskWords is the high-water mark of external memory used.
	PeakDiskWords int64
}

// IOs returns BlockReads + BlockWrites.
func (s IOStats) IOs() uint64 { return s.BlockReads + s.BlockWrites }

func toIOStats(st extmem.Stats) IOStats {
	return IOStats{
		BlockReads:     st.BlockReads,
		BlockWrites:    st.BlockWrites,
		WordReads:      st.WordReads,
		WordWrites:     st.WordWrites,
		PeakLeaseWords: st.PeakLease,
		PeakDiskWords:  st.PeakAlloc,
	}
}

// Result summarizes an enumeration run.
type Result struct {
	// Triangles is the number of triangles emitted.
	Triangles uint64
	// Vertices and Edges describe the graph after deduplication.
	Vertices int
	Edges    int64
	// Stats covers the enumeration proper (canonicalization excluded).
	Stats IOStats
	// CanonIOs is the I/O cost of converting the input to the canonical
	// degree-ordered representation (O(sort(E)), Section 1.3).
	CanonIOs uint64
	// Colors, HighDegVertices, Subproblems and X expose algorithm
	// internals for experiments; see trienum.Info.
	Colors          int
	HighDegVertices int
	Subproblems     int
	X               uint64
	// Workers is the resolved worker cap of the run: Config.Workers after
	// defaulting, or 1 for the sequential algorithms. The engine engages
	// at most one worker per subproblem, so fewer workers (len of
	// WorkerStats) may actually run on small inputs.
	Workers int
	// WorkerStats breaks the parallel phases down per worker. Which
	// worker solved which subproblem depends on scheduling, so individual
	// entries vary run to run; their sum does not, and is already
	// included in Stats.
	WorkerStats []IOStats
}

// Enumerate runs the configured algorithm over the given undirected edge
// list (self-loops and duplicates are ignored) and calls emit exactly once
// per triangle. Vertices are reported with the input's ids, sorted so that
// a < b < c. A nil emit counts only.
func Enumerate(edges [][2]uint32, cfg Config, emit func(a, b, c uint32)) (Result, error) {
	var res Result
	cfg = cfg.withDefaults()
	if cfg.BlockWords <= 0 || cfg.BlockWords&(cfg.BlockWords-1) != 0 {
		return res, fmt.Errorf("repro: BlockWords must be a positive power of two, got %d", cfg.BlockWords)
	}
	if cfg.MemoryWords < cfg.BlockWords*cfg.BlockWords {
		return res, fmt.Errorf("repro: tall-cache assumption requires MemoryWords >= BlockWords² (%d < %d)",
			cfg.MemoryWords, cfg.BlockWords*cfg.BlockWords)
	}

	var sp *extmem.Space
	emCfg := extmem.Config{M: cfg.MemoryWords, B: cfg.BlockWords}
	if cfg.DiskPath != "" {
		var err error
		sp, err = extmem.NewFileSpace(emCfg, cfg.DiskPath)
		if err != nil {
			return res, err
		}
		defer sp.Close()
	} else {
		sp = extmem.NewSpace(emCfg)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	exec := trienum.Exec{Workers: workers}
	parallelAlgo := cfg.Algorithm == CacheAware || cfg.Algorithm == Deterministic

	var el graph.EdgeList
	for _, e := range edges {
		el.Add(e[0], e[1])
	}
	var g graph.Canonical
	var canonWS []extmem.Stats
	if parallelAlgo {
		// The O(sort(E)) canonicalization sorts run on the parallel emsort
		// engine at every worker count (including 1), so CanonIOs is
		// invariant in Workers; the sort workers' I/Os are part of the
		// canonicalization cost, not of Stats/WorkerStats.
		sorter := func(ext extmem.Extent, stride int, key emsort.Key) {
			canonWS = extmem.AddStatsVec(canonWS, emsort.ParallelSortRecords(ext, stride, key, workers))
		}
		g = graph.Canonicalize(sp, el.Write(sp), sorter)
	} else {
		g = graph.CanonicalizeList(sp, el)
	}
	res.Vertices = g.NumVertices
	res.Edges = g.Edges.Len()
	canonStats := sp.Stats()
	for _, w := range canonWS {
		canonStats.Add(w)
	}
	res.CanonIOs = canonStats.IOs()
	sp.DropCache()
	sp.ResetStats()

	wrapped := func(a, b, c uint32) {
		if emit != nil {
			t := graph.MakeTriple(g.RankToID[a], g.RankToID[b], g.RankToID[c])
			emit(t.V1, t.V2, t.V3)
		}
	}

	var info trienum.Info
	var workerStats []extmem.Stats
	res.Workers = 1
	switch cfg.Algorithm {
	case CacheAware:
		info, workerStats = trienum.CacheAwareParallel(sp, g, cfg.Seed, exec, wrapped)
		res.Workers = workers
	case CacheOblivious:
		info = trienum.Oblivious(sp, g, cfg.Seed, wrapped)
	case Deterministic:
		var err error
		info, workerStats, err = trienum.DeterministicParallel(sp, g, cfg.FamilySize, exec, wrapped)
		if err != nil {
			return res, err
		}
		res.Workers = workers
	case HuTaoChung:
		info = trienum.HuTaoChung(sp, g, wrapped)
	case BlockNestedLoop:
		info = baseline.BlockNestedLoop(sp, g, wrapped)
	case EdgeIterator:
		info = baseline.EdgeIterator(sp, g, wrapped)
	case SortMerge:
		info = trienum.Dementiev(sp, g, wrapped)
	default:
		return res, fmt.Errorf("repro: unknown algorithm %v", cfg.Algorithm)
	}
	sp.Flush()

	st := sp.Stats()
	for _, w := range workerStats {
		st.Add(w)
		res.WorkerStats = append(res.WorkerStats, toIOStats(w))
	}
	res.Stats = toIOStats(st)
	res.Triangles = info.Triangles
	res.Colors = info.Colors
	res.HighDegVertices = info.HighDegVertices
	res.Subproblems = info.Subproblems
	res.X = info.X
	return res, nil
}

// Count is Enumerate without an emit callback.
func Count(edges [][2]uint32, cfg Config) (Result, error) {
	return Enumerate(edges, cfg, nil)
}

// Generate builds a workload graph from a spec string such as
//
//	clique:n=100
//	gnm:n=1000,m=8000
//	powerlaw:n=1000,m=8000,beta=2.3
//	sells:ns=50,nb=20,nt=20,per=4,avail=0.3
//	bipartite:n1=100,n2=100,m=2000
//	grid:r=30,c=40
//	planted:n=500,m=2000,k=20
//	rmat:scale=10,m=8000
//
// Randomized generators are deterministic in seed.
func Generate(spec string, seed uint64) ([][2]uint32, error) {
	kind, params, err := parseSpec(spec)
	if err != nil {
		return nil, err
	}
	geti := func(key string, def int) int {
		if v, ok := params[key]; ok {
			n, _ := strconv.Atoi(v)
			return n
		}
		return def
	}
	getf := func(key string, def float64) float64 {
		if v, ok := params[key]; ok {
			f, _ := strconv.ParseFloat(v, 64)
			return f
		}
		return def
	}
	var el graph.EdgeList
	switch kind {
	case "clique":
		el = graph.Clique(geti("n", 50))
	case "gnm":
		el = graph.GNM(geti("n", 1000), geti("m", 4000), seed)
	case "powerlaw":
		el = graph.PowerLaw(geti("n", 1000), geti("m", 4000), getf("beta", 2.3), seed)
	case "sells":
		el = graph.Sells(geti("ns", 50), geti("nb", 20), geti("nt", 20), geti("per", 4), getf("avail", 0.3), seed)
	case "bipartite":
		el = graph.BipartiteRandom(geti("n1", 100), geti("n2", 100), geti("m", 2000), seed)
	case "grid":
		el = graph.Grid(geti("r", 30), geti("c", 30))
	case "planted":
		el = graph.PlantedClique(geti("n", 500), geti("m", 2000), geti("k", 20), seed)
	case "rmat":
		el = graph.RMAT(geti("scale", 10), geti("m", 8000), seed)
	default:
		return nil, fmt.Errorf("repro: unknown generator %q", kind)
	}
	out := make([][2]uint32, 0, len(el.Edges))
	for _, e := range el.Edges {
		out = append(out, [2]uint32{graph.U(e), graph.V(e)})
	}
	return out, nil
}

func parseSpec(spec string) (kind string, params map[string]string, err error) {
	params = map[string]string{}
	kind, rest, found := strings.Cut(spec, ":")
	kind = strings.TrimSpace(strings.ToLower(kind))
	if kind == "" {
		return "", nil, fmt.Errorf("repro: empty graph spec")
	}
	if !found {
		return kind, params, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return "", nil, fmt.Errorf("repro: bad spec parameter %q", kv)
		}
		params[strings.TrimSpace(strings.ToLower(k))] = strings.TrimSpace(v)
	}
	return kind, params, nil
}

const edgeFileMagic = uint64(0x5452_4947_5241_5048) // "TRIGRAPH"

// WriteEdgeFile stores an edge list in the library's simple binary format
// (little-endian: magic, count, then u32 pairs).
func WriteEdgeFile(w io.Writer, edges [][2]uint32) error {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], edgeFileMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(edges)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 8*len(edges))
	for i, e := range edges {
		binary.LittleEndian.PutUint32(buf[8*i:], e[0])
		binary.LittleEndian.PutUint32(buf[8*i+4:], e[1])
	}
	_, err := w.Write(buf)
	return err
}

// ReadEdgeFile loads an edge list written by WriteEdgeFile.
func ReadEdgeFile(r io.Reader) ([][2]uint32, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("repro: short edge file header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != edgeFileMagic {
		return nil, fmt.Errorf("repro: not an edge file (bad magic)")
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	if n > 1<<32 {
		return nil, fmt.Errorf("repro: implausible edge count %d", n)
	}
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("repro: short edge file body: %w", err)
	}
	edges := make([][2]uint32, n)
	for i := range edges {
		edges[i][0] = binary.LittleEndian.Uint32(buf[8*i:])
		edges[i][1] = binary.LittleEndian.Uint32(buf[8*i+4:])
	}
	return edges, nil
}
