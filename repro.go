// Package repro is an I/O-efficient subgraph enumeration library: a
// production-grade reproduction of
//
//	Rasmus Pagh and Francesco Silvestri,
//	"The Input/Output Complexity of Triangle Enumeration", PODS 2014.
//
// The library enumerates every triangle of an undirected graph using the
// paper's I/O-optimal algorithms — O(E^1.5/(sqrt(M)·B)) block transfers on
// a machine with M words of internal memory and blocks of B words —
// together with the pre-existing baselines it improves on, plus the
// Section 6 extensions: k-cliques and arbitrary connected patterns on at
// most 8 vertices, and the Section 1 join application. The external
// memory model is simulated with exact I/O accounting (see package
// internal/extmem), and can optionally be backed by a real file.
//
// # Graph handles and queries
//
// The paper's pipeline has two phases: an O(sort(E)) canonicalization
// (Section 1.3) and the enumeration proper. Build pays the first phase
// exactly once and returns a reusable *Graph handle; queries against the
// handle — Triangles, Cliques, Match — run only the second:
//
//	g, err := repro.Build(repro.FromEdges(edges), repro.Options{})
//	defer g.Close()
//	for t, err := range g.Triangles(ctx, repro.Query{}) {
//		...
//	}
//
// Every query has a callback form (TrianglesFunc, CliquesFunc,
// MatchFunc) returning a per-query Result, and a range-over-func
// iterator form (Triangles, Cliques, Match) yielding (value, error);
// breaking out of the iterator — or cancelling the context — stops the
// enumeration cooperatively and drains the worker pool. Build ingests
// an edge slice (FromEdges), the binary edge-file format (FromReader),
// text edge lists (FromTextReader), or a generator spec (FromSpec).
//
// Build freezes the canonical representation into an immutable core, and
// every query runs on a private session over it — its own M-word cache,
// statistics, and scratch — so any number of queries may run concurrently
// on one handle from different goroutines. Each reports exactly the
// Result of a serialized run: sessions start cold by construction, so
// emission order, I/O statistics, and CanonIOs are byte-identical however
// queries overlap. Emit callbacks may issue follow-up queries against the
// handle; Close waits for active queries to drain.
//
// The one-shot helpers remain:
//
//	edges := [][2]uint32{{0, 1}, {1, 2}, {0, 2}}
//	res, err := repro.Enumerate(edges, repro.Config{}, func(a, b, c uint32) {
//		fmt.Println(a, b, c)
//	})
//
// They are thin shims over Build + TrianglesFunc and re-pay the
// canonicalization on every call.
//
// # Updates and generations
//
// Handles are versioned: Update merges a batched edge delta — adds and
// removes, in the caller's vertex ids — against the frozen canonical
// image and atomically installs the result as the next immutable
// generation:
//
//	res, err := g.Update(ctx, repro.Delta{
//		Add:    [][2]uint32{{7, 9}},
//		Remove: [][2]uint32{{0, 1}},
//	})
//
// The delta is sorted with the parallel external-memory sorts and merged
// in O(sort(E_delta) + scan(E) + scan(V)) I/Os plus two sort(E)
// relabeling passes — degrees, ranks, and the canonical edge array are
// re-derived incrementally, well below the cost of rebuilding
// (UpdateResult.MergeIOs reports the deterministic, worker-invariant
// price; BenchmarkE18UpdateDelta compares the two). The installed image
// is byte-identical to what a fresh Build of the updated edge set would
// freeze, so queries after an Update behave exactly as on a rebuilt
// handle. Queries pin the generation current when they start: in-flight
// queries are untouched by concurrent updates (snapshot isolation), and
// a superseded generation's core is released when its last query drains.
//
// # Durability and recovery
//
// Disk-backed handles (Options.DiskPath) make the canonical image a
// first-class durable artifact. Build stamps the image file with a
// versioned, checksummed footer describing its layout (FORMAT.md
// specifies the bytes), and Open adopts such an image without re-paying
// the O(sort(E)) canonicalization — the footer is validated against the
// recomputed layout, the canonical extents are rebound in place, and
// queries run immediately; the adopted generation reports CanonIOs = 0,
// the one divergence from a fresh Build:
//
//	g, res, err := repro.Open(path, repro.Options{})
//	// res.Replayed, res.ReplayIOs, res.AdoptIOs say what recovery did
//
// Every effective Update of a disk-backed handle is also appended to a
// write-ahead log at DiskPath+".wal" — length-prefixed, checksummed,
// fsynced before the new generation becomes current — and Checkpoint
// (or Close) atomically promotes the latest generation over the image
// and truncates the log. A crash at any point therefore loses nothing
// that was confirmed: Open replays the surviving whole records through
// the same deterministic delta merges, discarding a torn tail, and the
// recovered graph is byte-identical — emission, Results, I/O statistics,
// canonical artifacts — to a fresh Build of the replayed edge set at
// every Workers value. At most one live handle may own a durable image
// at a time.
//
// # Parallel execution
//
// The cache-aware algorithms decompose into independent subproblems — the
// c³ color triples of Section 2 and the per-vertex high-degree passes of
// Lemma 1 — and queries run them on a pool of Workers workers (default:
// one per CPU). The O(sort(E)) substrate underneath them — edge
// canonicalization and the color-pair ordering — runs on the same pool
// via the parallel external-memory sorts of internal/emsort, whose output
// is byte-identical to the sequential sorts. Each worker executes
// subproblems on its own simulated machine, a private M-word cache over a
// shared read-only edge region, so the I/O accounting stays exact under
// concurrency: per-worker counts (Result.WorkerStats) sum to the same
// totals at every worker count, and the triangle stream handed to emit is
// byte-identical whether Workers is 1 or NumCPU. emit is always invoked
// from the calling goroutine, never concurrently.
//
// # Execution modes
//
// Queries run in one of two modes over the same engine. The faithful
// path (the default) routes every access through the simulated
// external-memory machine and reports the paper's exact block counts —
// use it to measure the algorithms. The fast path (Options.Native per
// handle, Query.Mode = ModeNative per query) runs the identical
// decomposition on direct slices with the accounting compiled out of
// the hot path — use it to time the algorithms, or wherever only the
// results matter. The emission stream is byte-identical between the
// modes at every Workers value, memory- and disk-backed; the one
// documented divergence is that a native run reports zero Result.Stats
// and nil Result.WorkerStats. Build, Open, and Update always run on
// the faithful path, so CanonIOs and merge costs stay meaningful.
//
// # Standing queries
//
// Subscribe registers a standing query on an updatable handle: after
// every effective Update (and after each WAL replay merge during Open),
// the subscription delivers a ChangeSet holding exactly the triangles —
// or k-cliques (SubscribeCliques) or pattern matches (SubscribeMatch) —
// the new generation added and retracted relative to the one it
// supersedes:
//
//	sub, err := g.Subscribe(ctx, repro.Query{})
//	defer sub.Close()
//	for cs := range sub.Changes() {
//		// cs.Added, cs.Removed, cs.Stats — the exact diff for cs.Generation
//	}
//
// ChangeSets are computed differentially (package internal/diff): a
// delta-restricted trie join scans the closure of the delta's endpoints
// against both frozen images instead of re-enumerating either, in I/Os
// proportional to the delta's neighborhood rather than the graph
// (BenchmarkE21Subscribe measures the gap). The stream is deterministic
// the same way queries are: the accumulated ChangeSets equal the diff
// of fresh enumerations of consecutive generations — tuples sorted,
// pattern matches in minimal-embedding form — and both the emissions
// and ChangeSet.Stats are byte-identical at every Workers value,
// memory- or disk-backed. Registration is atomic against updates
// (a subscription observes a generation's installation entirely or not
// at all), delivery never blocks Update (a slow consumer queues), and
// Close on the graph drains queued ChangeSets before ending the stream
// with ErrGraphClosed. The daemon exposes the same stream as NDJSON
// (POST /v1/graphs/{id}/subscriptions, see docs/API.md).
//
// # Beyond the library
//
// cmd/trienum is the command-line front end, and cmd/trienumd serves
// graph handles over HTTP/JSON to multiple tenants — streaming each
// query's deterministic emission order as NDJSON with resumable cursors
// (see docs/API.md). Past one machine, Partition splits a built graph
// into per-shard sub-images by color range, trienumd runs them as
// shard or coordinator roles, and DialCluster scatter–gathers queries
// whose merged stream is byte-identical to the single-process ordered
// run (see FORMAT.md for the manifest). ARCHITECTURE.md maps the
// layers from the simulated
// disk up to the daemon and states the determinism contract each one
// exports; see examples/ for complete programs and EXPERIMENTS.md for
// the reproduction of every complexity claim in the paper.
package repro

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// generatorParams types the parameter keys each generator accepts:
// 'i' for integers, 'f' for floats. Generate rejects unknown keys and
// malformed values instead of silently substituting zero.
var generatorParams = map[string]map[string]byte{
	"clique":    {"n": 'i'},
	"gnm":       {"n": 'i', "m": 'i'},
	"powerlaw":  {"n": 'i', "m": 'i', "beta": 'f'},
	"sells":     {"ns": 'i', "nb": 'i', "nt": 'i', "per": 'i', "avail": 'f'},
	"bipartite": {"n1": 'i', "n2": 'i', "m": 'i'},
	"grid":      {"r": 'i', "c": 'i'},
	"planted":   {"n": 'i', "m": 'i', "k": 'i'},
	"rmat":      {"scale": 'i', "m": 'i'},
}

// Generate builds a workload graph from a spec string such as
//
//	clique:n=100
//	gnm:n=1000,m=8000
//	powerlaw:n=1000,m=8000,beta=2.3
//	sells:ns=50,nb=20,nt=20,per=4,avail=0.3
//	bipartite:n1=100,n2=100,m=2000
//	grid:r=30,c=40
//	planted:n=500,m=2000,k=20
//	rmat:scale=10,m=8000
//
// Unknown parameter keys and malformed values are errors. Randomized
// generators are deterministic in seed.
func Generate(spec string, seed uint64) ([][2]uint32, error) {
	kind, params, err := parseSpec(spec)
	if err != nil {
		return nil, err
	}
	known, ok := generatorParams[kind]
	if !ok {
		return nil, fmt.Errorf("repro: unknown generator %q", kind)
	}
	ints := map[string]int{}
	floats := map[string]float64{}
	for k, v := range params {
		switch known[k] {
		case 'i':
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("repro: generator %q: parameter %s=%q is not an integer", kind, k, v)
			}
			ints[k] = n
		case 'f':
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("repro: generator %q: parameter %s=%q is not a number", kind, k, v)
			}
			floats[k] = f
		default:
			keys := make([]string, 0, len(known))
			for kk := range known {
				keys = append(keys, kk)
			}
			sort.Strings(keys)
			return nil, fmt.Errorf("repro: generator %q: unknown parameter %q (have %v)", kind, k, keys)
		}
	}
	geti := func(key string, def int) int {
		if v, ok := ints[key]; ok {
			return v
		}
		return def
	}
	getf := func(key string, def float64) float64 {
		if v, ok := floats[key]; ok {
			return v
		}
		return def
	}
	var el graph.EdgeList
	switch kind {
	case "clique":
		el = graph.Clique(geti("n", 50))
	case "gnm":
		el = graph.GNM(geti("n", 1000), geti("m", 4000), seed)
	case "powerlaw":
		el = graph.PowerLaw(geti("n", 1000), geti("m", 4000), getf("beta", 2.3), seed)
	case "sells":
		el = graph.Sells(geti("ns", 50), geti("nb", 20), geti("nt", 20), geti("per", 4), getf("avail", 0.3), seed)
	case "bipartite":
		el = graph.BipartiteRandom(geti("n1", 100), geti("n2", 100), geti("m", 2000), seed)
	case "grid":
		el = graph.Grid(geti("r", 30), geti("c", 30))
	case "planted":
		el = graph.PlantedClique(geti("n", 500), geti("m", 2000), geti("k", 20), seed)
	case "rmat":
		el = graph.RMAT(geti("scale", 10), geti("m", 8000), seed)
	}
	out := make([][2]uint32, 0, len(el.Edges))
	for _, e := range el.Edges {
		out = append(out, [2]uint32{graph.U(e), graph.V(e)})
	}
	return out, nil
}

func parseSpec(spec string) (kind string, params map[string]string, err error) {
	params = map[string]string{}
	kind, rest, found := strings.Cut(spec, ":")
	kind = strings.TrimSpace(strings.ToLower(kind))
	if kind == "" {
		return "", nil, fmt.Errorf("repro: empty graph spec")
	}
	if !found {
		return kind, params, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return "", nil, fmt.Errorf("repro: bad spec parameter %q", kv)
		}
		params[strings.TrimSpace(strings.ToLower(k))] = strings.TrimSpace(v)
	}
	return kind, params, nil
}
