package repro

import (
	"bytes"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/graph"
)

func TestEnumerateAllAlgorithmsAgree(t *testing.T) {
	edges, err := Generate("planted:n=120,m=600,k=12", 3)
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	var wantSet []graph.Triple
	{
		var el graph.EdgeList
		for _, e := range edges {
			el.Add(e[0], e[1])
		}
		o := graph.NewOracle(el)
		want = o.Count()
		wantSet = o.Triples()
	}
	for _, alg := range Algorithms() {
		var got []graph.Triple
		res, err := Enumerate(edges, Config{Algorithm: alg, MemoryWords: 1 << 12, BlockWords: 1 << 5, Seed: 9},
			func(a, b, c uint32) { got = append(got, graph.Triple{V1: a, V2: b, V3: c}) })
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Triangles != want {
			t.Errorf("%v: %d triangles, want %d", alg, res.Triangles, want)
		}
		sort.Slice(got, func(i, j int) bool {
			a, b := got[i], got[j]
			return a.V1 < b.V1 || (a.V1 == b.V1 && (a.V2 < b.V2 || (a.V2 == b.V2 && a.V3 < b.V3)))
		})
		if len(got) != len(wantSet) {
			t.Fatalf("%v: emitted %d, want %d", alg, len(got), len(wantSet))
		}
		for i := range got {
			if got[i] != wantSet[i] {
				t.Fatalf("%v: triple %d = %v, want %v", alg, i, got[i], wantSet[i])
			}
		}
		if res.Stats.IOs() == 0 {
			t.Errorf("%v: zero I/Os reported for out-of-core input", alg)
		}
	}
}

func TestCountOnly(t *testing.T) {
	edges, _ := Generate("clique:n=30", 0)
	res, err := Count(edges, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(30 * 29 * 28 / 6); res.Triangles != want {
		t.Errorf("K30: %d triangles, want %d", res.Triangles, want)
	}
	if res.Vertices != 30 || res.Edges != 435 {
		t.Errorf("V=%d E=%d", res.Vertices, res.Edges)
	}
}

func TestEnumerateValidatesConfig(t *testing.T) {
	edges := [][2]uint32{{0, 1}}
	if _, err := Enumerate(edges, Config{BlockWords: 100, MemoryWords: 100000}, nil); err == nil {
		t.Error("non-power-of-two block accepted")
	}
	if _, err := Enumerate(edges, Config{BlockWords: 128, MemoryWords: 1000}, nil); err == nil {
		t.Error("short cache accepted")
	}
}

func TestEnumerateIgnoresJunkEdges(t *testing.T) {
	edges := [][2]uint32{{1, 2}, {2, 1}, {3, 3}, {1, 2}, {2, 3}, {1, 3}}
	res, err := Count(edges, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 1 || res.Edges != 3 {
		t.Errorf("got %d triangles over %d edges, want 1 over 3", res.Triangles, res.Edges)
	}
}

func TestFileBackedEnumeration(t *testing.T) {
	edges, _ := Generate("gnm:n=200,m=2000", 5)
	mem, err := Count(edges, Config{MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := Count(edges, Config{
		MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 1,
		DiskPath: filepath.Join(t.TempDir(), "em.bin"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if mem.Triangles != disk.Triangles {
		t.Errorf("file-backed run found %d triangles, memory-backed %d", disk.Triangles, mem.Triangles)
	}
	if mem.Stats.IOs() != disk.Stats.IOs() {
		t.Errorf("I/O counts differ between backends: %d vs %d", mem.Stats.IOs(), disk.Stats.IOs())
	}
}

func TestGenerateSpecs(t *testing.T) {
	specs := []string{
		"clique:n=10", "gnm:n=50,m=100", "powerlaw:n=60,m=120,beta=2.5",
		"sells:ns=10,nb=5,nt=5,per=2,avail=0.5", "bipartite:n1=10,n2=10,m=30",
		"grid:r=5,c=5", "planted:n=40,m=60,k=6", "rmat:scale=6,m=100",
	}
	for _, s := range specs {
		edges, err := Generate(s, 1)
		if err != nil {
			t.Errorf("%s: %v", s, err)
		}
		if len(edges) == 0 {
			t.Errorf("%s: empty graph", s)
		}
	}
	if _, err := Generate("nope:n=1", 0); err == nil {
		t.Error("unknown generator accepted")
	}
	if _, err := Generate("", 0); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := Generate("gnm:n", 0); err == nil {
		t.Error("malformed parameter accepted")
	}
}

func TestEdgeFileRoundTrip(t *testing.T) {
	edges, _ := Generate("gnm:n=100,m=500", 7)
	var buf bytes.Buffer
	if err := WriteEdgeFile(&buf, edges); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(edges) {
		t.Fatalf("%d edges back, want %d", len(back), len(edges))
	}
	for i := range edges {
		if back[i] != edges[i] {
			t.Fatalf("edge %d mismatch", i)
		}
	}
	// Corrupt magic.
	raw := buf.Bytes()
	var buf2 bytes.Buffer
	if err := WriteEdgeFile(&buf2, edges); err != nil {
		t.Fatal(err)
	}
	b2 := buf2.Bytes()
	b2[0] ^= 0xff
	if _, err := ReadEdgeFile(bytes.NewReader(b2)); err == nil {
		t.Error("corrupted magic accepted")
	}
	_ = raw
}

func TestParseAlgorithmRoundTrip(t *testing.T) {
	for _, a := range Algorithms() {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("round trip failed for %v", a)
		}
	}
	if _, err := ParseAlgorithm("quantum"); err == nil {
		t.Error("bogus algorithm accepted")
	}
	if s := Algorithm(99).String(); s == "" {
		t.Error("unknown algorithm has empty name")
	}
}

func TestWorkersDeterminism(t *testing.T) {
	// The public engine contract: for every algorithm and Workers ∈
	// {1, 2, 8}, the emission stream is byte-identical and the aggregated
	// block-I/O totals are equal. Includes a skewed graph so the parallel
	// high-degree path runs.
	specs := []string{"powerlaw:n=500,m=4000,beta=2.0", "gnm:n=200,m=2000", "planted:n=150,m=800,k=14"}
	for _, spec := range specs {
		edges, err := Generate(spec, 21)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range Algorithms() {
			run := func(workers int) ([]graph.Triple, Result) {
				var got []graph.Triple
				res, err := Enumerate(edges, Config{
					Algorithm: alg, MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 4, Workers: workers,
				}, func(a, b, c uint32) { got = append(got, graph.Triple{V1: a, V2: b, V3: c}) })
				if err != nil {
					t.Fatalf("%s/%v/workers=%d: %v", spec, alg, workers, err)
				}
				return got, res
			}
			base, baseRes := run(1)
			for _, workers := range []int{2, 8} {
				got, res := run(workers)
				if len(got) != len(base) {
					t.Fatalf("%s/%v: workers=%d emitted %d, workers=1 emitted %d", spec, alg, workers, len(got), len(base))
				}
				for i := range got {
					if got[i] != base[i] {
						t.Fatalf("%s/%v: workers=%d emission %d is %v, workers=1 emitted %v", spec, alg, workers, i, got[i], base[i])
					}
				}
				if res.Stats.BlockReads != baseRes.Stats.BlockReads || res.Stats.BlockWrites != baseRes.Stats.BlockWrites {
					t.Errorf("%s/%v: workers=%d I/Os (r=%d w=%d) != workers=1 (r=%d w=%d)", spec, alg, workers,
						res.Stats.BlockReads, res.Stats.BlockWrites, baseRes.Stats.BlockReads, baseRes.Stats.BlockWrites)
				}
			}
		}
	}
}

func TestWorkerStatsSumIntoTotals(t *testing.T) {
	edges, _ := Generate("gnm:n=400,m=4000", 8)
	seq, err := Count(edges, Config{MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Count(edges, Config{MemoryWords: 1 << 10, BlockWords: 1 << 5, Seed: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.Workers != 4 || len(par.WorkerStats) == 0 {
		t.Fatalf("Workers=%d WorkerStats=%d entries", par.Workers, len(par.WorkerStats))
	}
	// Per-worker counts must account for the difference between the run
	// total and the coordinator's share, i.e. sum consistently: the same
	// aggregate as the 1-worker run.
	if par.Stats.IOs() != seq.Stats.IOs() {
		t.Errorf("aggregate IOs %d (4 workers) != %d (1 worker)", par.Stats.IOs(), seq.Stats.IOs())
	}
	var workerIOs uint64
	for _, w := range par.WorkerStats {
		workerIOs += w.IOs()
	}
	if workerIOs == 0 || workerIOs > par.Stats.IOs() {
		t.Errorf("worker IOs %d outside (0, total %d]", workerIOs, par.Stats.IOs())
	}
}

func TestDeterministicSeedsMatch(t *testing.T) {
	edges, _ := Generate("gnm:n=150,m=1500", 11)
	a, err := Count(edges, Config{Algorithm: CacheAware, Seed: 123, MemoryWords: 1 << 10, BlockWords: 1 << 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Count(edges, Config{Algorithm: CacheAware, Seed: 123, MemoryWords: 1 << 10, BlockWords: 1 << 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats || a.Triangles != b.Triangles || a.X != b.X {
		t.Error("identical configs gave different results")
	}
}
