package repro

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/diff"
	"repro/internal/extmem"
	"repro/internal/graph"
)

// ChangeSet is one differential delivery of a standing query: exactly
// the matches an effective Update created and destroyed, computed by the
// delta-anchored kernel (internal/diff) against the two generations'
// frozen images — never by re-enumeration.
//
// Added and Removed carry the changed matches in the caller's vertex
// ids: k-clique subscriptions list each clique's members ascending;
// pattern subscriptions list position-to-vertex assignments normalized
// to the lexicographically least member of their Aut(H) orbit (see
// Pattern.Normalize — the same normalization makes embeddings from
// different generations comparable). Each list is sorted
// lexicographically, so the whole ChangeSet is a pure function of the
// two edge sets and the query: byte-identical at every Workers value,
// memory- and disk-backed.
//
// Stats is the exact block-I/O cost of the differential computation for
// this subscription — the closure scans over the two images — and is
// likewise deterministic and invariant in Workers (zero for native
// subscriptions, whose accounting is compiled out). The generation-over-
// generation accumulation contract is pinned by tests: concatenating a
// subscription's ChangeSets reproduces the diff of fresh enumerations
// of any two of its generations.
type ChangeSet struct {
	// Generation is the generation the update installed; the changes
	// transform the previous generation's matches into this one's.
	Generation uint64
	// Added and Removed are the created and destroyed matches.
	Added   [][]uint32
	Removed [][]uint32
	// Vertices and Edges describe the graph as of Generation.
	Vertices int
	Edges    int64
	// Stats is the differential enumeration cost (both passes).
	Stats IOStats
}

// Subscription is a standing query registered on a Graph handle with
// Subscribe, SubscribeCliques, or SubscribeMatch. After every effective
// Update the handle runs the differential kernel and delivers one
// ChangeSet on Changes, in update order. The channel closes when the
// subscription ends — Close on the subscription, cancellation of its
// context, Close on the Graph (which first lets the already-queued
// ChangeSets drain), or a kernel failure — after which Err reports why.
type Subscription struct {
	g       *Graph
	id      uint64
	gen     uint64
	spec    diff.Spec
	pat     *Pattern
	workers int
	native  bool

	mu     sync.Mutex
	cond   sync.Cond
	queue  []ChangeSet
	err    error
	closed bool

	ch      chan ChangeSet
	done    chan struct{} // closed once: no further ChangeSets will be queued
	dropped chan struct{} // closed when pending deliveries are discarded
}

// Subscribe registers a standing triangle query: after each effective
// Update the subscription receives the triangles the delta created and
// destroyed, as a ChangeSet of ascending id triples. Query.Workers
// bounds the differential kernel's parallelism exactly as in Triangles
// (0 = inherit the handle's Options.Workers); emissions and Stats are
// invariant in it. Query.Mode selects the execution mode as in Triangles,
// captured once at registration: a native subscription's ChangeSets carry
// the same Added/Removed tuples with a zero Stats. Query.Algorithm, Seed,
// Limit, and Result do not apply to subscriptions and are ignored.
//
// ctx bounds the subscription's lifetime: when it is cancelled the
// subscription closes and Err reports ctx.Err(). ctx may be nil. The
// registration is atomic against concurrent updates: the subscription
// observes every generation transition after the Generation it reports,
// each fully or not at all.
func (g *Graph) Subscribe(ctx context.Context, q Query) (*Subscription, error) {
	return g.subscribe(ctx, diff.Spec{K: 3}, nil, q)
}

// SubscribeCliques is Subscribe for k-cliques, k >= 3.
func (g *Graph) SubscribeCliques(ctx context.Context, k int, q Query) (*Subscription, error) {
	if k < 3 {
		return nil, fmt.Errorf("repro: clique size %d out of range (need k >= 3)", k)
	}
	return g.subscribe(ctx, diff.Spec{K: k}, nil, q)
}

// SubscribeMatch is Subscribe for embeddings of a pattern, delivered as
// Aut(H)-normalized assignments (see Pattern.Normalize).
func (g *Graph) SubscribeMatch(ctx context.Context, p *Pattern, q Query) (*Subscription, error) {
	if p == nil || p.p == nil {
		return nil, fmt.Errorf("repro: SubscribeMatch requires a non-nil pattern")
	}
	return g.subscribe(ctx, diff.Spec{Pattern: p.p}, p, q)
}

func (g *Graph) subscribe(ctx context.Context, spec diff.Spec, pat *Pattern, q Query) (*Subscription, error) {
	workers := g.resolveWorkers(q)
	native := g.resolveNative(q)
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, ErrGraphClosed
	}
	g.subSeq++
	s := &Subscription{
		g:       g,
		id:      g.subSeq,
		gen:     g.cur.gen,
		spec:    spec,
		pat:     pat,
		workers: workers,
		native:  native,
		ch:      make(chan ChangeSet),
		done:    make(chan struct{}),
		dropped: make(chan struct{}),
	}
	s.cond.L = &s.mu
	if g.subs == nil {
		g.subs = make(map[uint64]*Subscription)
	}
	g.subs[s.id] = s
	g.mu.Unlock()

	go s.pump()
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				g.unsubscribe(s.id)
				s.finish(ctx.Err(), true)
			case <-s.done:
			}
		}()
	}
	return s, nil
}

// Changes is the subscription's delivery channel: one ChangeSet per
// effective Update, in update order. The receiver paces delivery — a
// slow consumer queues ChangeSets inside the subscription but never
// blocks Update. The channel closes when the subscription ends; consult
// Err then.
func (s *Subscription) Changes() <-chan ChangeSet { return s.ch }

// Generation is the generation the subscription was registered on: the
// first delivered ChangeSet (if any update follows) carries
// Generation()+1, and consecutive deliveries consecutive numbers.
func (s *Subscription) Generation() uint64 { return s.gen }

// Err reports why the subscription ended: nil after a plain Close,
// ErrGraphClosed after the handle was closed, the context's error after
// cancellation, or the kernel failure that tore it down. It is
// meaningful once Changes is closed.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close unregisters the subscription and discards undelivered
// ChangeSets; Changes closes promptly (a delivery already blocked in a
// channel send may still land). Closing twice is a no-op. Close never
// blocks on the Graph's queries or updates.
func (s *Subscription) Close() error {
	s.g.unsubscribe(s.id)
	s.finish(nil, true)
	return nil
}

// finish ends the subscription: err is recorded for Err, and drop
// selects whether queued ChangeSets are discarded (Subscription.Close,
// context cancellation) or drained to the consumer first (Graph.Close,
// kernel failure). Safe to call multiple times; only the first wins.
func (s *Subscription) finish(err error, drop bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.err = err
	if drop {
		s.queue = nil
		close(s.dropped)
	}
	close(s.done)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// enqueue hands a ChangeSet to the pump. Deliveries racing a concurrent
// finish are dropped — the subscription already ended.
func (s *Subscription) enqueue(cs ChangeSet) {
	s.mu.Lock()
	if !s.closed {
		s.queue = append(s.queue, cs)
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// pump is the delivery goroutine: it moves queued ChangeSets onto the
// exposed channel (the consumer's pace is the only backpressure) and
// closes the channel when the queue is drained after finish, or
// immediately when the subscription was dropped.
func (s *Subscription) pump() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			close(s.ch)
			return
		}
		cs := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		select {
		case s.ch <- cs:
		case <-s.dropped:
			close(s.ch)
			return
		}
	}
}

func (g *Graph) unsubscribe(id uint64) {
	g.mu.Lock()
	delete(g.subs, id)
	g.mu.Unlock()
}

// snapshotSubsLocked returns the live subscriptions in registration
// order. Caller holds g.mu — the atomicity of subscription registration
// against updates comes from snapshotting in the same critical section
// that installs the new generation.
func (g *Graph) snapshotSubsLocked() []*Subscription {
	if len(g.subs) == 0 {
		return nil
	}
	subs := make([]*Subscription, 0, len(g.subs))
	for _, s := range g.subs {
		subs = append(subs, s)
	}
	sort.Slice(subs, func(i, j int) bool { return subs[i].id < subs[j].id })
	return subs
}

// deliverDiff runs the differential kernel once per subscription for the
// transition old -> ng and queues the resulting ChangeSets. It runs
// synchronously inside the installing update (old is still pinned, ng is
// current and cannot be superseded while updateMu is held), so
// deliveries across updates are ordered by generation. A kernel failure
// tears the affected subscription down with the error; the others — and
// the update itself — are unaffected.
func (g *Graph) deliverDiff(subs []*Subscription, old, ng *generation, addedIDs, removedIDs []extmem.Word) {
	for _, s := range subs {
		cs, err := g.diffOnce(s, old, ng, addedIDs, removedIDs)
		if err != nil {
			g.unsubscribe(s.id)
			s.finish(err, false)
			continue
		}
		s.enqueue(cs)
	}
}

// diffOnce computes one subscription's ChangeSet for old -> ng: the
// removed pass runs against the old generation's image anchored on the
// effective removed edges, the added pass against the new image anchored
// on the effective added edges. Each pass runs on its own session Space,
// so Stats is exact and isolated like any query's.
func (g *Graph) diffOnce(s *Subscription, old, ng *generation, addedIDs, removedIDs []extmem.Word) (ChangeSet, error) {
	removed, remStats, err := g.diffPass(s, old, removedIDs)
	if err != nil {
		return ChangeSet{}, err
	}
	added, addStats, err := g.diffPass(s, ng, addedIDs)
	if err != nil {
		return ChangeSet{}, err
	}
	remStats.Add(addStats)
	return ChangeSet{
		Generation: ng.gen,
		Added:      added,
		Removed:    removed,
		Vertices:   ng.numVertices,
		Edges:      ng.edgesLen,
		Stats:      toIOStats(remStats),
	}, nil
}

// diffPass runs the kernel once against gen's image, anchored on the
// id-space delta edges, and returns the changed matches in id space,
// normalized and sorted lexicographically.
func (g *Graph) diffPass(s *Subscription, gen *generation, deltaIDs []extmem.Word) ([][]uint32, extmem.Stats, error) {
	out := [][]uint32{}
	if len(deltaIDs) == 0 {
		return out, extmem.Stats{}, nil
	}
	cfg := extmem.Config{M: g.opts.MemoryWords, B: g.opts.BlockWords, Native: s.native}
	// The kernel never allocates external scratch (its closure state is
	// leased internal memory), so the session needs no scratch file even
	// on disk-backed handles.
	sp, err := extmem.NewSessionSpace(cfg, gen.core, gen.coreWords, "")
	if err != nil {
		return nil, extmem.Stats{}, err
	}
	defer sp.Close()

	idToRank := make(map[uint32]uint32, len(gen.rankToID))
	for r, id := range gen.rankToID {
		idToRank[id] = uint32(r)
	}
	anchors := make([]extmem.Word, 0, len(deltaIDs))
	for _, e := range deltaIDs {
		u, okU := idToRank[graph.U(e)]
		v, okV := idToRank[graph.V(e)]
		if !okU || !okV {
			return nil, extmem.Stats{}, fmt.Errorf("repro: internal: delta edge {%d, %d} unknown to generation %d",
				graph.U(e), graph.V(e), gen.gen)
		}
		anchors = append(anchors, graph.Pack(u, v))
	}

	cg := graph.Canonical{
		Edges:       sp.ExtentAt(gen.edgesBase, gen.edgesLen),
		NumVertices: gen.numVertices,
		Degrees:     sp.ExtentAt(gen.degBase, gen.degLen),
		RankToID:    gen.rankToID,
	}
	_, err = diff.Enumerate(nil, sp, cg, anchors, s.spec, s.workers, func(rverts []uint32) {
		ids := make([]uint32, len(rverts))
		for i, r := range rverts {
			ids[i] = gen.rankToID[r]
		}
		if s.pat != nil {
			// Rank-space orbit representatives differ across generations;
			// the id-space normalization is generation-independent.
			s.pat.p.Minimize(ids)
		} else {
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		}
		out = append(out, ids)
	})
	if err != nil {
		return nil, sp.Stats(), err
	}
	sp.Flush()
	sortTuples(out)
	return out, sp.Stats(), nil
}

// sortTuples orders equal-length tuples lexicographically.
func sortTuples(ts [][]uint32) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
}
