package repro

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// tupleSet keys normalized tuples for set diffs.
type tupleSet map[string][]uint32

func (s tupleSet) insert(vs []uint32) { s[fmt.Sprint(vs)] = append([]uint32(nil), vs...) }

// minus returns s - o as a lexicographically sorted list, shaped like
// ChangeSet.Added/Removed (empty, not nil, when nothing changed).
func (s tupleSet) minus(o tupleSet) [][]uint32 {
	out := [][]uint32{}
	for k, v := range s {
		if _, ok := o[k]; !ok {
			out = append(out, v)
		}
	}
	sortTuples(out)
	return out
}

// subKind couples a subscription constructor with the fresh-enumeration
// oracle of the same family, both normalized identically.
type subKind struct {
	name      string
	subscribe func(g *Graph, q Query) (*Subscription, error)
	enumerate func(t *testing.T, g *Graph) tupleSet
}

func subKinds() []subKind {
	return []subKind{
		{
			name: "triangles",
			subscribe: func(g *Graph, q Query) (*Subscription, error) {
				return g.Subscribe(nil, q)
			},
			enumerate: func(t *testing.T, g *Graph) tupleSet {
				t.Helper()
				set := tupleSet{}
				if _, err := g.TrianglesFunc(nil, Query{}, func(a, b, c uint32) {
					set.insert([]uint32{a, b, c})
				}); err != nil {
					t.Fatal(err)
				}
				return set
			},
		},
		{
			name: "cliques4",
			subscribe: func(g *Graph, q Query) (*Subscription, error) {
				return g.SubscribeCliques(nil, 4, q)
			},
			enumerate: func(t *testing.T, g *Graph) tupleSet {
				t.Helper()
				set := tupleSet{}
				if _, err := g.CliquesFunc(nil, 4, Query{}, func(c []uint32) {
					set.insert(c)
				}); err != nil {
					t.Fatal(err)
				}
				return set
			},
		},
		{
			name: "diamond",
			subscribe: func(g *Graph, q Query) (*Subscription, error) {
				return g.SubscribeMatch(nil, PatternDiamond, q)
			},
			enumerate: func(t *testing.T, g *Graph) tupleSet {
				t.Helper()
				set := tupleSet{}
				buf := make([]uint32, PatternDiamond.K())
				if _, err := g.MatchFunc(nil, PatternDiamond, Query{}, func(assign []uint32) {
					copy(buf, assign)
					// Representatives depend on the generation's internal
					// order; normalize before comparing across graphs.
					PatternDiamond.Normalize(buf)
					set.insert(buf)
				}); err != nil {
					t.Fatal(err)
				}
				return set
			},
		},
	}
}

// TestSubscribeMatchesFreshDiff is the tentpole determinism contract:
// for an update sequence, the accumulated subscription stream equals
// the diff of fresh enumerations of consecutive generations — and the
// delivered ChangeSets (emissions AND I/O statistics) are byte-identical
// at Workers 1 and 4, memory- and disk-backed.
func TestSubscribeMatchesFreshDiff(t *testing.T) {
	edges, err := Generate("gnm:n=150,m=900", 13)
	if err != nil {
		t.Fatal(err)
	}
	deltas := updateScenario(edges)
	opts := Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1}

	// Model edge set at each generation, and one fresh handle per
	// generation for the enumeration oracle.
	models := []edgeSet{newEdgeSet(edges)}
	for _, d := range deltas {
		next := cloneSet(models[len(models)-1])
		next.apply(d)
		models = append(models, next)
	}
	fresh := make([]*Graph, len(models))
	for i, m := range models {
		fresh[i], err = Build(FromEdges(m.slice()), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer fresh[i].Close()
	}

	for _, kind := range subKinds() {
		kind := kind
		t.Run(kind.name, func(t *testing.T) {
			enums := make([]tupleSet, len(models))
			for i := range models {
				enums[i] = kind.enumerate(t, fresh[i])
			}

			// One stream of ChangeSets per (backend, workers) variant; all
			// four must be byte-identical, and equal to the oracle diff.
			var reference []ChangeSet
			for _, disk := range []bool{false, true} {
				for _, workers := range []int{1, 4} {
					label := fmt.Sprintf("disk=%v/workers=%d", disk, workers)
					vopts := opts
					if disk {
						vopts.DiskPath = t.TempDir() + "/sub.img"
					}
					g, err := Build(FromEdges(edges), vopts)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					sub, err := kind.subscribe(g, Query{Workers: workers})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if sub.Generation() != 0 {
						t.Fatalf("%s: registered on generation %d, want 0", label, sub.Generation())
					}
					var stream []ChangeSet
					for i, d := range deltas {
						res, err := g.Update(nil, d)
						if err != nil {
							t.Fatalf("%s: update %d: %v", label, i, err)
						}
						cs := <-sub.Changes()
						if cs.Generation != res.Generation {
							t.Fatalf("%s: delivery for generation %d after installing %d", label, cs.Generation, res.Generation)
						}
						if cs.Vertices != res.Vertices || cs.Edges != res.Edges {
							t.Fatalf("%s: ChangeSet describes %d/%d, update reported %d/%d",
								label, cs.Vertices, cs.Edges, res.Vertices, res.Edges)
						}
						if cs.Stats.BlockReads == 0 {
							t.Fatalf("%s: generation %d: differential pass reports zero block reads", label, cs.Generation)
						}
						stream = append(stream, cs)
					}
					if err := g.Close(); err != nil {
						t.Fatalf("%s: close: %v", label, err)
					}

					for i, cs := range stream {
						wantAdded := enums[i+1].minus(enums[i])
						wantRemoved := enums[i].minus(enums[i+1])
						if !reflect.DeepEqual(cs.Added, wantAdded) {
							t.Fatalf("%s: generation %d Added:\n got %v\nwant %v", label, cs.Generation, cs.Added, wantAdded)
						}
						if !reflect.DeepEqual(cs.Removed, wantRemoved) {
							t.Fatalf("%s: generation %d Removed:\n got %v\nwant %v", label, cs.Generation, cs.Removed, wantRemoved)
						}
					}
					if reference == nil {
						reference = stream
					} else if !reflect.DeepEqual(stream, reference) {
						t.Fatalf("%s: stream differs from first variant:\n got %+v\nwant %+v", label, stream, reference)
					}
				}
			}
		})
	}
}

// TestSubscriptionGraphClose pins the drain contract: Close on the
// handle ends live subscriptions with ErrGraphClosed, but ChangeSets
// already queued are still delivered before the channel closes.
func TestSubscriptionGraphClose(t *testing.T) {
	edges, err := Generate("gnm:n=60,m=240", 7)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(FromEdges(edges), Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := g.Subscribe(nil, Query{})
	if err != nil {
		t.Fatal(err)
	}
	// Two effective updates, unconsumed, then Close.
	for i := uint32(0); i < 2; i++ {
		if _, err := g.Update(nil, Delta{Add: []Edge{{1000 + 3*i, 1001 + 3*i}, {1001 + 3*i, 1002 + 3*i}, {1000 + 3*i, 1002 + 3*i}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	var gens []uint64
	for cs := range sub.Changes() {
		gens = append(gens, cs.Generation)
	}
	if !reflect.DeepEqual(gens, []uint64{1, 2}) {
		t.Fatalf("drained generations %v, want [1 2]", gens)
	}
	if !errors.Is(sub.Err(), ErrGraphClosed) {
		t.Fatalf("Err() = %v, want ErrGraphClosed", sub.Err())
	}
	// New subscriptions after Close fail fast.
	if _, err := g.Subscribe(nil, Query{}); !errors.Is(err, ErrGraphClosed) {
		t.Fatalf("Subscribe on closed handle: %v", err)
	}
}

// TestSubscriptionCloseAndCancel covers the caller-initiated endings:
// Subscription.Close discards undelivered changes and reports a nil Err;
// context cancellation closes the stream with the context's error.
func TestSubscriptionCloseAndCancel(t *testing.T) {
	edges, err := Generate("gnm:n=60,m=240", 7)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(FromEdges(edges), Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	sub, err := g.Subscribe(nil, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sub.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, ok := <-sub.Changes(); ok {
		t.Fatal("Changes delivered after Close")
	}
	if sub.Err() != nil {
		t.Fatalf("Err() after plain Close = %v", sub.Err())
	}
	// A closed subscription no longer receives deliveries.
	if _, err := g.Update(nil, Delta{Add: []Edge{{900, 901}}}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	sub2, err := g.Subscribe(ctx, Query{})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	for range sub2.Changes() {
	}
	if !errors.Is(sub2.Err(), context.Canceled) {
		t.Fatalf("Err() after cancel = %v", sub2.Err())
	}
}

// TestSubscribeMidUpdateAtomicity races registrations against a stream
// of effective updates: whatever generation a subscription reports
// having registered on, its deliveries must start exactly one past it
// and stay consecutive — a transition is observed fully or not at all.
func TestSubscribeMidUpdateAtomicity(t *testing.T) {
	edges, err := Generate("gnm:n=60,m=240", 7)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(FromEdges(edges), Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	const updates = 10
	start := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-start
		for i := 0; i < updates; i++ {
			e := Edge{2000 + uint32(i), 2001 + uint32(i)}
			var d Delta
			if i%2 == 0 {
				d.Add = []Edge{e}
			} else {
				d.Remove = []Edge{{2000 + uint32(i-1), 2001 + uint32(i-1)}}
			}
			if _, err := g.Update(nil, d); err != nil {
				t.Errorf("update %d: %v", i, err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				sub, err := g.Subscribe(nil, Query{})
				if err != nil {
					t.Error(err)
					return
				}
				base := sub.Generation()
				<-done // all deliveries for this subscription are queued now
				for expect := base + 1; expect <= updates; expect++ {
					cs, ok := <-sub.Changes()
					if !ok {
						t.Errorf("registered on %d, stream ended before generation %d", base, expect)
						return
					}
					if cs.Generation != expect {
						t.Errorf("registered on %d, received generation %d, want %d", base, cs.Generation, expect)
						sub.Close()
						return
					}
				}
				sub.Close()
				if base == updates {
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()
}

// TestSubscriptionWALCutResume is the recovery edge: cut the WAL at a
// record boundary, reopen, and a subscription registered on the
// recovered handle resumes exactly from the recovered generation — its
// next delivery is recovered+1 and matches the fresh-enumeration diff.
func TestSubscriptionWALCutResume(t *testing.T) {
	opts := Options{MemoryWords: 1 << 11, BlockWords: 1 << 5, Workers: 1}
	img, wal, models := crashScenario(t, opts)
	ends := walRecordEnds(t, wal)

	ro, or, _ := openCrashCopy(t, img, wal[:ends[0]], opts)
	defer ro.Close()
	if or.Generation != 1 {
		t.Fatalf("recovered to generation %d, want 1", or.Generation)
	}
	sub, err := ro.Subscribe(nil, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Generation() != or.Generation {
		t.Fatalf("subscription registered on %d, want recovered generation %d", sub.Generation(), or.Generation)
	}

	d := Delta{Add: []Edge{{3000, 3001}, {3001, 3002}, {3000, 3002}, {0, 3000}}}
	res, err := ro.Update(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != or.Generation+1 {
		t.Fatalf("update installed %d, want %d", res.Generation, or.Generation+1)
	}
	cs := <-sub.Changes()
	if cs.Generation != res.Generation {
		t.Fatalf("delivery carries generation %d, want %d", cs.Generation, res.Generation)
	}

	kind := subKinds()[0] // triangles
	before, err := Build(FromEdges(models[1].slice()), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer before.Close()
	next := cloneSet(models[1])
	next.apply(d)
	after, err := Build(FromEdges(next.slice()), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer after.Close()
	eb, ea := kind.enumerate(t, before), kind.enumerate(t, after)
	if !reflect.DeepEqual(cs.Added, ea.minus(eb)) || !reflect.DeepEqual(cs.Removed, eb.minus(ea)) {
		t.Fatalf("resumed delivery diverges from fresh diff:\n got +%v -%v\nwant +%v -%v",
			cs.Added, cs.Removed, ea.minus(eb), eb.minus(ea))
	}
}
