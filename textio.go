package repro

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadTextEdges parses a whitespace-separated edge list, the de-facto
// exchange format of graph repositories (SNAP, DIMACS-like): one "u v"
// pair per line, with '#' or '%' comment lines ignored and any fields
// after the first two (weights, timestamps) skipped. Self-loops are
// dropped; duplicate edges are kept (Build deduplicates). Lines longer
// than 1 MiB are rejected as malformed rather than buffered without
// bound; the scan buffer itself grows with the input, so small inputs
// never allocate the cap (FuzzReadTextEdges pins both properties).
func ReadTextEdges(r io.Reader) ([][2]uint32, error) {
	var edges [][2]uint32
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("repro: line %d: want two vertex ids, got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("repro: line %d: bad vertex id %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("repro: line %d: bad vertex id %q: %v", lineNo, fields[1], err)
		}
		if u == v {
			continue
		}
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("repro: reading edge list: %w", err)
	}
	return edges, nil
}

// WriteTextEdges writes one "u v" pair per line.
func WriteTextEdges(w io.Writer, edges [][2]uint32) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
