package repro

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadTextEdges(t *testing.T) {
	in := `# a SNAP-style comment
% another comment style

0 1
1 2  extra-column-ignored
0	2
3 3
`
	edges, err := ReadTextEdges(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]uint32{{0, 1}, {1, 2}, {0, 2}} // self-loop 3-3 dropped
	if len(edges) != len(want) {
		t.Fatalf("got %d edges, want %d", len(edges), len(want))
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
	res, err := Count(edges, Config{})
	if err != nil || res.Triangles != 1 {
		t.Errorf("triangle count %d err %v", res.Triangles, err)
	}
}

func TestReadTextEdgesErrors(t *testing.T) {
	for _, bad := range []string{"1\n", "x y\n", "1 -2\n", "1 99999999999\n"} {
		if _, err := ReadTextEdges(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q accepted", bad)
		}
	}
}

// FuzzReadTextEdges mirrors FuzzReadEdgeFile for the text format:
// arbitrary input must never panic or allocate out of proportion to the
// input (the parse yields at most one edge per four input bytes — "u v"
// plus a separator — so a forged input cannot force a large slice), and
// anything that parses must survive a write-read round trip exactly.
func FuzzReadTextEdges(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("0 1\n1 2"))
	f.Add([]byte("# comment\n% comment\n\n3 4 weight-ignored\n5\t6"))
	f.Add([]byte("7 7\n"))          // self-loop, dropped
	f.Add([]byte("1"))              // too few fields
	f.Add([]byte("x y"))            // not numbers
	f.Add([]byte("4294967296 1"))   // overflows uint32
	f.Add([]byte("+1 2"))           // sign prefix is not a vertex id
	f.Add([]byte("1 2\r\n3 4\r\n")) // CRLF
	f.Add([]byte(strings.Repeat("9", 2<<20)))
	f.Fuzz(func(t *testing.T, in []byte) {
		edges, err := ReadTextEdges(bytes.NewReader(in))
		if err != nil {
			return
		}
		if max := len(in)/4 + 1; len(edges) > max {
			t.Fatalf("%d edges from %d input bytes (max %d): over-allocation", len(edges), len(in), max)
		}
		var buf bytes.Buffer
		if err := WriteTextEdges(&buf, edges); err != nil {
			t.Fatal(err)
		}
		back, err := ReadTextEdges(&buf)
		if err != nil {
			t.Fatalf("round trip of valid parse failed: %v", err)
		}
		if len(back) != len(edges) {
			t.Fatalf("round trip length %d != %d", len(back), len(edges))
		}
		for i := range back {
			if back[i] != edges[i] {
				t.Fatalf("round trip edge %d mismatch", i)
			}
		}
	})
}

func TestTextEdgesRoundTrip(t *testing.T) {
	edges, _ := Generate("gnm:n=50,m=200", 3)
	var buf bytes.Buffer
	if err := WriteTextEdges(&buf, edges); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTextEdges(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(edges) {
		t.Fatalf("%d edges back, want %d", len(back), len(edges))
	}
	for i := range edges {
		if back[i] != edges[i] {
			t.Fatal("round trip mismatch")
		}
	}
}
