package repro

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadTextEdges(t *testing.T) {
	in := `# a SNAP-style comment
% another comment style

0 1
1 2  extra-column-ignored
0	2
3 3
`
	edges, err := ReadTextEdges(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]uint32{{0, 1}, {1, 2}, {0, 2}} // self-loop 3-3 dropped
	if len(edges) != len(want) {
		t.Fatalf("got %d edges, want %d", len(edges), len(want))
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
	res, err := Count(edges, Config{})
	if err != nil || res.Triangles != 1 {
		t.Errorf("triangle count %d err %v", res.Triangles, err)
	}
}

func TestReadTextEdgesErrors(t *testing.T) {
	for _, bad := range []string{"1\n", "x y\n", "1 -2\n", "1 99999999999\n"} {
		if _, err := ReadTextEdges(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q accepted", bad)
		}
	}
}

func TestTextEdgesRoundTrip(t *testing.T) {
	edges, _ := Generate("gnm:n=50,m=200", 3)
	var buf bytes.Buffer
	if err := WriteTextEdges(&buf, edges); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTextEdges(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(edges) {
		t.Fatalf("%d edges back, want %d", len(back), len(edges))
	}
	for i := range edges {
		if back[i] != edges[i] {
			t.Fatal("round trip mismatch")
		}
	}
}
