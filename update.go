package repro

import (
	"context"
	"errors"
	"fmt"
	"os"

	"repro/internal/emsort"
	"repro/internal/extmem"
	"repro/internal/graph"
)

// Edge is one undirected edge in the caller's vertex-id space, as
// everywhere else in the API: {u, v} and {v, u} are the same edge, and
// self-loops are ignored.
type Edge = [2]uint32

// Delta is a batched mutation of a Graph's edge set. The updated set is
// (E \ Remove) ∪ Add: removing an absent edge and adding a present one
// are no-ops (only effective changes are counted), duplicates within
// either list are collapsed, and an edge named in both lists ends up
// present. Vertices appear and disappear with their edges — ids never
// seen before are valid in Add, and a vertex whose last edge is removed
// leaves the graph.
type Delta struct {
	Add    []Edge
	Remove []Edge
}

// UpdateResult reports an installed (or no-op) Update.
type UpdateResult struct {
	// Generation is the generation serving queries after the call: the
	// newly installed one, or the unchanged current one when the delta
	// had no effect.
	Generation uint64
	// Added and Removed count the effective edge changes.
	Added, Removed int64
	// Vertices and Edges describe the updated graph.
	Vertices int
	Edges    int64
	// MergeIOs is the block-I/O cost of the delta merge: sorting the
	// delta, merging it against the frozen image, re-deriving the
	// canonical artifacts, and writing the new generation's image. It is
	// deterministic for a given graph and delta, and invariant in
	// Options.Workers — and, for small deltas, strictly below the
	// O(sort(E)) cost of rebuilding via Build (see BenchmarkE18UpdateDelta).
	MergeIOs uint64
}

// Update merges the delta against the current generation's frozen
// canonical image and atomically installs the result as a new immutable
// generation. The delta is sorted with the parallel external-memory
// sorts at Options.Workers and merged in O(sort(E_delta) + scan(E) +
// scan(V)) I/Os plus two sort(E) relabeling passes — re-deriving degrees,
// ranks, and the canonical edge array incrementally rather than
// re-canonicalizing — and the installed image is byte-identical to the
// one a fresh Build of the updated edge set would freeze: every query on
// the new generation emits, counts, and reports I/O statistics exactly as
// it would against that fresh handle, at every worker count. (The one
// exception is Result.CanonIOs, which reports the cost actually paid —
// Build plus merges — rather than the hypothetical rebuild's.)
//
// Queries and updates interleave freely: in-flight queries keep reading
// the generation they started on and new queries pin the latest one, so
// a query never observes a half-installed update (snapshot isolation).
// Updates themselves are serialized with each other. Disk-backed handles
// write each update generation to <DiskPath>.g<n> and remove it when its
// last reader drains (the Build image at DiskPath is left untouched, so
// it no longer reflects the handle after an effective Update); merge
// scratch spills to a temporary <DiskPath>.u<n> file, removed when the
// call returns.
//
// Cancellation through ctx is cooperative: the merge stops between
// phases and sort runs, the handle keeps serving its current generation,
// and ctx.Err() is returned. ctx may be nil. A delta with no effective
// changes installs nothing and reports the current generation (with the
// MergeIOs spent discovering that).
//
// On disk-backed handles every effective Update is also appended to the
// write-ahead log at <DiskPath>.wal and fsynced before the new generation
// becomes current, so a crash before the next Checkpoint/Close replays it
// on Open — see Open and the package's "Durability and recovery" section.
func (g *Graph) Update(ctx context.Context, d Delta) (UpdateResult, error) {
	return g.applyPacked(ctx, packDelta(d.Add), packDelta(d.Remove), true)
}

// applyPacked is Update on pre-packed delta words. WAL replay calls it
// with durable=false: a replayed record is already in the log, so
// re-appending it would double the history.
func (g *Graph) applyPacked(ctx context.Context, adds, removes []extmem.Word, durable bool) (UpdateResult, error) {
	g.updateMu.Lock()
	defer g.updateMu.Unlock()

	// Register with the close-guard (Close waits for updates like it
	// waits for queries) and pin the generation being merged against.
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return UpdateResult{}, ErrGraphClosed
	}
	old := g.cur
	old.refs++
	g.active++
	g.seq++
	seq := g.seq
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		rel := g.unpinLocked(old)
		g.mu.Unlock()
		g.releaseDetached(rel)
		g.mu.Lock()
		g.releaseRefLocked()
		g.mu.Unlock()
	}()

	cfg := extmem.Config{M: g.opts.MemoryWords, B: g.opts.BlockWords}
	scratch := ""
	if g.opts.DiskPath != "" {
		scratch = fmt.Sprintf("%s.u%d", g.opts.DiskPath, seq)
	}
	sp, err := extmem.NewSessionSpace(cfg, old.core, old.coreWords, scratch)
	if err != nil {
		return UpdateResult{}, err
	}
	defer sp.Close()

	workers := g.opts.workers()
	var mergeWS []extmem.Stats
	sorter := func(ext extmem.Extent) error {
		ws, err := emsort.ParallelSortRecordsCtx(ctx, ext, 1, emsort.Identity, workers)
		mergeWS = extmem.AddStatsVec(mergeWS, ws)
		return err
	}
	view := graph.GenView{
		IDEdges:  sp.ExtentAt(old.layout.Dedup, old.edgesLen),
		Ends:     sp.ExtentAt(old.layout.Ends, 2*old.edgesLen),
		ByDeg:    sp.ExtentAt(old.layout.ByDeg, int64(old.numVertices)),
		RankByID: sp.ExtentAt(old.layout.RankByID, int64(old.numVertices)),
	}
	m, err := graph.MergeDelta(ctx, sp, view, adds, removes, sorter)
	if err != nil {
		return UpdateResult{}, err
	}

	if m.Added == 0 && m.Removed == 0 {
		mergeStats := sp.Stats()
		for _, w := range mergeWS {
			mergeStats.Add(w)
		}
		return UpdateResult{
			Generation: old.gen,
			Vertices:   old.numVertices,
			Edges:      old.edgesLen,
			MergeIOs:   mergeStats.IOs(),
		}, nil
	}

	// Lay the merged artifacts down as a fresh-Build image — same
	// addresses, same watermark, scratch regions left empty — and freeze
	// it into the next generation's core.
	eNew := m.Edges.Len()
	nvNew := int64(m.NumVertices)
	lay := graph.LayoutFor(eNew, eNew, nvNew, g.opts.BlockWords)
	genPath := ""
	var img *extmem.Space
	if g.opts.DiskPath != "" {
		genPath = fmt.Sprintf("%s.g%d", g.opts.DiskPath, old.gen+1)
		img, err = extmem.NewFileSpace(cfg, genPath)
		if err != nil {
			return UpdateResult{}, err
		}
	} else {
		img = extmem.NewSpace(cfg)
	}
	img.Alloc(lay.Mark)
	m.IDEdges.CopyTo(img.ExtentAt(lay.Dedup, m.IDEdges.Len()))
	m.Ends.CopyTo(img.ExtentAt(lay.Ends, m.Ends.Len()))
	m.ByDeg.CopyTo(img.ExtentAt(lay.ByDeg, m.ByDeg.Len()))
	m.RankByID.CopyTo(img.ExtentAt(lay.RankByID, m.RankByID.Len()))
	m.Degrees.CopyTo(img.ExtentAt(lay.DegOut, m.Degrees.Len()))
	m.Edges.CopyTo(img.ExtentAt(lay.EdgeOut, m.Edges.Len()))
	img.Flush()

	// MergeIOs covers everything the update paid: the session's sorts,
	// merge scans, and copy-out reads, the sort workers' I/Os, and the
	// image writes — captured only now, after the copy-out charged its
	// reads to the session.
	mergeStats := sp.Stats()
	for _, w := range mergeWS {
		mergeStats.Add(w)
	}
	mergeStats.Add(img.Stats())
	mergeIOs := mergeStats.IOs()

	ng := &generation{
		gen:         old.gen + 1,
		path:        genPath,
		coreWords:   (lay.Mark + int64(g.opts.BlockWords) - 1) &^ int64(g.opts.BlockWords-1),
		layout:      lay,
		rawLen:      eNew, // an update generation's layout is LayoutFor(e, e, nv)
		numVertices: m.NumVertices,
		edgesBase:   lay.EdgeOut,
		edgesLen:    eNew,
		degBase:     lay.DegOut,
		degLen:      nvNew,
		rankToID:    m.RankToID,
		canonIOs:    old.canonIOs + mergeIOs,
		refs:        1, // the handle's current pointer
	}
	if genPath != "" {
		if err := img.Close(); err != nil {
			os.Remove(genPath)
			return UpdateResult{}, err
		}
		fc, err := extmem.NewFileCore(genPath)
		if err != nil {
			os.Remove(genPath)
			return UpdateResult{}, err
		}
		ng.core, ng.coreFile = fc, fc
	} else {
		ng.core = extmem.WordsCore(img.Snapshot(img.ExtentAt(0, lay.Mark)))
		img.Close()
	}

	// Durability point: log the delta — fsynced — before the generation it
	// produces becomes visible. A crash after the append replays this
	// record on Open; a crash before it loses an update that was never
	// confirmed to the caller. The pre-pack edge words are logged (not the
	// sorted merge input), so replay runs the identical deterministic
	// merge.
	if durable && g.opts.DiskPath != "" {
		if err := g.walAppend(graph.WALRecord{Gen: ng.gen, Adds: adds, Removes: removes}); err != nil {
			return UpdateResult{}, errors.Join(err, ng.release())
		}
	}

	// Atomic install: new queries pin the new generation; the old one is
	// released when its last in-flight reader drains. Standing queries are
	// snapshotted in the same critical section, so a subscription observes
	// this transition exactly when it registered before the swap.
	g.mu.Lock()
	g.cur = ng
	subs := g.snapshotSubsLocked()
	rel := g.unpinLocked(old) // the current pointer's reference moves to ng
	g.mu.Unlock()
	g.releaseDetached(rel)

	// Differential deliveries run inside the update (old is pinned until
	// this function returns), anchored on the effective edges the merge
	// scan collected.
	g.deliverDiff(subs, old, ng, m.AddedEdges, m.RemovedEdges)

	return UpdateResult{
		Generation: ng.gen,
		Added:      m.Added,
		Removed:    m.Removed,
		Vertices:   m.NumVertices,
		Edges:      eNew,
		MergeIOs:   mergeIOs,
	}, nil
}

// packDelta normalizes an edge list into packed words, dropping
// self-loops; sorting and deduplication happen in the merge.
func packDelta(es []Edge) []extmem.Word {
	out := make([]extmem.Word, 0, len(es))
	for _, e := range es {
		if e[0] == e[1] {
			continue
		}
		out = append(out, graph.Pack(e[0], e[1]))
	}
	return out
}
