package repro

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// edgeSet is the native model the update tests check the handle against.
type edgeSet map[[2]uint32]struct{}

func newEdgeSet(edges [][2]uint32) edgeSet {
	s := edgeSet{}
	for _, e := range edges {
		s.add(e)
	}
	return s
}

func norm(e [2]uint32) [2]uint32 {
	if e[0] > e[1] {
		e[0], e[1] = e[1], e[0]
	}
	return e
}

func (s edgeSet) add(e [2]uint32) {
	if e[0] == e[1] {
		return
	}
	s[norm(e)] = struct{}{}
}

func (s edgeSet) remove(e [2]uint32) { delete(s, norm(e)) }

func (s edgeSet) apply(d Delta) {
	for _, e := range d.Remove {
		s.remove(e)
	}
	for _, e := range d.Add {
		s.add(e)
	}
}

// slice returns the set as a deterministically ordered edge list.
func (s edgeSet) slice() [][2]uint32 {
	out := make([][2]uint32, 0, len(s))
	for e := range s {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i][0] < out[j][0] || (out[i][0] == out[j][0] && out[i][1] < out[j][1])
	})
	return out
}

// assertQueriesMatchFresh runs the full query suite against the updated
// handle and against a fresh Build of the same edge set, and requires
// byte-identity: transcripts, Results, and summed worker stats — with
// CanonIOs normalized, the one documented divergence (the updated handle
// reports the build+merge cost actually paid, not the rebuild's).
func assertQueriesMatchFresh(t *testing.T, label string, g *Graph, model edgeSet, opts Options) {
	t.Helper()
	opts.DiskPath = "" // the reference rebuild never needs a second file
	fresh, err := Build(FromEdges(model.slice()), opts)
	if err != nil {
		t.Fatalf("%s: fresh build: %v", label, err)
	}
	defer fresh.Close()

	if g.NumVertices() != fresh.NumVertices() || g.NumEdges() != fresh.NumEdges() {
		t.Fatalf("%s: updated handle V=%d E=%d, fresh build V=%d E=%d",
			label, g.NumVertices(), g.NumEdges(), fresh.NumVertices(), fresh.NumEdges())
	}
	for _, spec := range concurrencySuite() {
		gotTr, gotRes, err := spec.run(g)
		if err != nil {
			t.Fatalf("%s: %s on updated handle: %v", label, spec.name, err)
		}
		wantTr, wantRes, err := spec.run(fresh)
		if err != nil {
			t.Fatalf("%s: %s on fresh build: %v", label, spec.name, err)
		}
		if gotTr != wantTr {
			t.Fatalf("%s: %s: emission transcript differs from fresh build", label, spec.name)
		}
		ngot, gotSum := normalizeResult(gotRes)
		nwant, wantSum := normalizeResult(wantRes)
		ngot.CanonIOs, nwant.CanonIOs = 0, 0
		if !reflect.DeepEqual(ngot, nwant) {
			t.Fatalf("%s: %s: Result differs:\nupdated: %+v\nfresh:   %+v", label, spec.name, ngot, nwant)
		}
		if gotSum != wantSum {
			t.Fatalf("%s: %s: summed WorkerStats differ: %+v want %+v", label, spec.name, gotSum, wantSum)
		}
	}
}

// updateScenario is a sequence of deltas exercising every mutation shape:
// pure adds (including brand-new vertex ids), pure removes (including a
// vertex's last edge), and a mix with no-op entries and add/remove
// overlap.
func updateScenario(edges [][2]uint32) []Delta {
	return []Delta{
		{Add: [][2]uint32{{500, 501}, {501, 502}, {500, 502}, {0, 500}, {1, 1}}},
		{Remove: [][2]uint32{edges[0], edges[1], edges[1], {777, 778}}},
		{
			Add:    [][2]uint32{{500, 503}, edges[2], {600, 601}},
			Remove: [][2]uint32{{500, 501}, {600, 601}, edges[3]},
		},
	}
}

// TestUpdateEquivalentToRebuild is the tentpole contract: after every
// update of an add/remove/mixed sequence, every query of the suite — all
// algorithms, Workers 1 and 4, memory- and disk-backed — is byte-
// identical to the same query on a fresh Build of the updated edge set,
// and MergeIOs is deterministic: identical across Options.Workers values
// and across backends.
func TestUpdateEquivalentToRebuild(t *testing.T) {
	edges, err := Generate("gnm:n=150,m=900", 13)
	if err != nil {
		t.Fatal(err)
	}
	deltas := updateScenario(edges)

	mergeIOs := make(map[string][]uint64)
	variant := func(label string, opts Options) {
		g, err := Build(FromEdges(edges), opts)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		defer g.Close()
		model := newEdgeSet(edges)
		for i, d := range deltas {
			res, err := g.Update(nil, d)
			if err != nil {
				t.Fatalf("%s: update %d: %v", label, i, err)
			}
			model.apply(d)
			if res.Generation != uint64(i+1) || g.Generation() != uint64(i+1) {
				t.Fatalf("%s: update %d installed generation %d (handle says %d)", label, i, res.Generation, g.Generation())
			}
			if res.Edges != int64(len(model)) || res.Vertices != g.NumVertices() {
				t.Fatalf("%s: update %d reports E=%d V=%d, model has E=%d", label, i, res.Edges, res.Vertices, len(model))
			}
			mergeIOs[label] = append(mergeIOs[label], res.MergeIOs)
			assertQueriesMatchFresh(t, label, g, model, opts)
		}
	}

	base := Options{MemoryWords: 1 << 10, BlockWords: 1 << 5}
	w1 := base
	w1.Workers = 1
	variant("workers=1", w1)
	w4 := base
	w4.Workers = 4
	variant("workers=4", w4)
	disk := w1
	disk.DiskPath = filepath.Join(t.TempDir(), "em.bin")
	variant("disk", disk)

	for label, ios := range mergeIOs {
		if !reflect.DeepEqual(ios, mergeIOs["workers=1"]) {
			t.Errorf("MergeIOs not invariant: %s=%v, workers=1=%v", label, ios, mergeIOs["workers=1"])
		}
	}
	for i, io := range mergeIOs["workers=1"] {
		if io == 0 {
			t.Errorf("update %d reported zero MergeIOs", i)
		}
	}
}

// TestUpdateNoop: deltas with no effective change (empty, remove-absent,
// add-present) install nothing — the generation number, CanonIOs, and
// query results are untouched.
func TestUpdateNoop(t *testing.T) {
	edges, err := Generate("planted:n=80,m=400,k=8", 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(FromEdges(edges), Options{MemoryWords: 1 << 10, BlockWords: 1 << 5})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	before, err := g.TrianglesFunc(nil, Query{Seed: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}

	for i, d := range []Delta{
		{},
		{Remove: [][2]uint32{{4000, 4001}}},
		{Add: [][2]uint32{edges[0], {5, 5}}},
	} {
		res, err := g.Update(nil, d)
		if err != nil {
			t.Fatalf("noop update %d: %v", i, err)
		}
		if res.Generation != 0 || res.Added != 0 || res.Removed != 0 {
			t.Fatalf("noop update %d installed: %+v", i, res)
		}
	}
	if g.Generation() != 0 {
		t.Fatalf("generation moved to %d after no-op updates", g.Generation())
	}
	after, err := g.TrianglesFunc(nil, Query{Seed: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	na, _ := normalizeResult(after)
	nb, _ := normalizeResult(before)
	if !reflect.DeepEqual(na, nb) {
		t.Fatalf("query drifted across no-op updates:\nbefore: %+v\nafter:  %+v", nb, na)
	}
}

// TestUpdateToEmptyAndBack: removing every edge leaves a servable empty
// generation, and a later add repopulates it — both byte-identical to
// fresh builds of the same sets.
func TestUpdateToEmptyAndBack(t *testing.T) {
	edges := [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {2, 3}}
	opts := Options{MemoryWords: 1 << 10, BlockWords: 1 << 5}
	g, err := Build(FromEdges(edges), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	model := newEdgeSet(edges)

	wipe := Delta{Remove: edges}
	if _, err := g.Update(nil, wipe); err != nil {
		t.Fatal(err)
	}
	model.apply(wipe)
	if g.NumEdges() != 0 || g.NumVertices() != 0 {
		t.Fatalf("post-wipe handle: V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	res, err := g.TrianglesFunc(nil, Query{}, nil)
	if err != nil {
		t.Fatalf("query on empty generation: %v", err)
	}
	if res.Triangles != 0 {
		t.Fatalf("empty generation found %d triangles", res.Triangles)
	}

	refill := Delta{Add: [][2]uint32{{7, 8}, {8, 9}, {7, 9}}}
	if _, err := g.Update(nil, refill); err != nil {
		t.Fatal(err)
	}
	model.apply(refill)
	assertQueriesMatchFresh(t, "refill", g, model, opts)
}

// TestUpdateCancelledAndClosed: a cancelled Update leaves the current
// generation serving (and, for disk graphs, no stray files); Update on a
// closed handle fails with ErrGraphClosed.
func TestUpdateCancelledAndClosed(t *testing.T) {
	dir := t.TempDir()
	opts := Options{MemoryWords: 1 << 10, BlockWords: 1 << 5, DiskPath: filepath.Join(dir, "em.bin")}
	edges, err := Generate("gnm:n=100,m=600", 5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(FromEdges(edges), opts)
	if err != nil {
		t.Fatal(err)
	}
	before, err := g.TrianglesFunc(nil, Query{Seed: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Update(ctx, Delta{Add: [][2]uint32{{1000, 1001}}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled update: %v, want context.Canceled", err)
	}
	if g.Generation() != 0 {
		t.Fatalf("cancelled update moved the generation to %d", g.Generation())
	}
	after, err := g.TrianglesFunc(nil, Query{Seed: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	na, _ := normalizeResult(after)
	nb, _ := normalizeResult(before)
	if !reflect.DeepEqual(na, nb) {
		t.Fatal("query drifted across a cancelled update")
	}
	for _, pat := range []string{".u*", ".g*"} {
		if left, _ := filepath.Glob(opts.DiskPath + pat); len(left) > 0 {
			t.Errorf("cancelled update left files: %v", left)
		}
	}

	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Update(nil, Delta{Add: [][2]uint32{{1, 2}}}); !errors.Is(err, ErrGraphClosed) {
		t.Fatalf("update after Close: %v, want ErrGraphClosed", err)
	}
}
