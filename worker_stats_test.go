package repro

import (
	"testing"
)

// TestWorkerStatsSchedulingContract pins the documented semantics of
// Result.WorkerStats under the dynamic task schedulers (the shared
// task queue of the cache-aware engine and the parallelized oblivious
// recursion): individual entries — and even their count — depend on
// which worker won which task, but the entry-wise sum is invariant
// across runs and worker counts and is contained in the run's Stats.
func TestWorkerStatsSchedulingContract(t *testing.T) {
	edges, err := Generate("powerlaw:n=300,m=2400,beta=2.1", 21)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(FromEdges(edges), Options{MemoryWords: 1 << 10, BlockWords: 1 << 5})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	for _, alg := range []Algorithm{CacheAware, CacheOblivious, Deterministic} {
		var ref *IOStats
		for _, workers := range []int{1, 2, 4} {
			// Two runs per worker count: the second may assign tasks to
			// different workers, which must not move the aggregate.
			for run := 0; run < 2; run++ {
				res, err := g.TrianglesFunc(nil, Query{Algorithm: alg, Seed: 6, Workers: workers}, nil)
				if err != nil {
					t.Fatalf("%v/workers=%d: %v", alg, workers, err)
				}
				if res.Workers != workers {
					t.Errorf("%v/workers=%d: resolved Workers = %d", alg, workers, res.Workers)
				}
				// The engine engages at most one worker per task, so the
				// breakdown never grows past the cap (it may fall short of
				// it on small inputs).
				if len(res.WorkerStats) > workers {
					t.Errorf("%v/workers=%d: %d WorkerStats entries exceed the cap", alg, workers, len(res.WorkerStats))
				}
				sum := sumWorkerStats(res)
				if ref == nil {
					r := sum
					ref = &r
				} else if sum != *ref {
					t.Errorf("%v/workers=%d run %d: summed WorkerStats %+v, want the invariant %+v", alg, workers, run, sum, *ref)
				}
				// "Included in Stats": the parallel phases' transfers are a
				// subset of the run's total accounting.
				if sum.BlockReads > res.Stats.BlockReads || sum.BlockWrites > res.Stats.BlockWrites ||
					sum.WordReads > res.Stats.WordReads || sum.WordWrites > res.Stats.WordWrites {
					t.Errorf("%v/workers=%d: summed WorkerStats %+v exceeds Stats %+v", alg, workers, sum, res.Stats)
				}
			}
		}
		// Native execution uses chunk-granular work stealing, where a
		// per-worker transfer breakdown would be meaningless even if the
		// accounting were on; the contract is nil, not empty.
		res, err := g.TrianglesFunc(nil, Query{Algorithm: alg, Seed: 6, Workers: 4, Mode: ModeNative}, nil)
		if err != nil {
			t.Fatalf("%v/native: %v", alg, err)
		}
		if res.WorkerStats != nil {
			t.Errorf("%v/native: WorkerStats = %d entries, want nil", alg, len(res.WorkerStats))
		}
	}
}
